// Discovery-backend sweep: the paper's exchange economy under the
// idealized oracle lookup vs the decentralized PEX-gossip and
// Kademlia-DHT backends (ISSUE: LookupBackend API redesign).
//
// The paper assumes requests "locate up to a certain fraction" of
// current owners for free; the decentralized backends replace that with
// knowledge that is partial (gossip has to carry it), stale (TTL-aged
// caches, delayed retraction) and charged for (digest/routing wire
// bytes, per-hop cost). The sweep shows how much of the incentive
// structure survives: sharers should still out-perform free-riders
// under every backend, with the discovery counters quantifying what the
// decentralization costs.
#include "bench/bench_common.h"

using namespace p2pex;
using namespace p2pex::bench;

int main() {
  SimConfig base = base_config();
  base.policy = ExchangePolicy::kShortestFirst;
  print_header(
      "Discovery sweep — oracle vs PEX gossip vs Kademlia DHT",
      "decentralized discovery thins and staleness-pollutes the request "
      "graph but the sharing/non-sharing ordering must survive; wire "
      "bytes and hops price what the oracle assumed free",
      base);

  TablePrinter t({"backend", "sharing (min)", "non-sharing (min)", "ratio",
                  "exch %", "rings", "wire MB", "hops", "gossip", "misses",
                  "stale"});
  for (const discovery::BackendKind kind :
       {discovery::BackendKind::kOracle, discovery::BackendKind::kPex,
        discovery::BackendKind::kDht}) {
    SimConfig cfg = scaled(base);
    cfg.discovery.backend = kind;
    const std::unique_ptr<System> sys = run_system(cfg);
    const RunResult r = summarize_run(*sys);
    const SystemCounters& c = sys->counters();
    t.add_row({discovery::to_string(kind), num(r.mean_dl_minutes_sharing),
               num(r.mean_dl_minutes_nonsharing), num(r.dl_time_ratio, 2),
               num(100.0 * r.exchange_fraction),
               std::to_string(r.rings_formed),
               num(static_cast<double>(c.lookup_wire_bytes) / 1e6, 2),
               std::to_string(c.dht_hops), std::to_string(c.gossip_rounds),
               std::to_string(c.lookup_misses),
               std::to_string(c.stale_entries_served)});
  }
  print_table(t);
  return 0;
}
