// Figure 7: CDF of per-session transfer volume by session type
// (non-exchange, pairwise, 3/4/5-way) for one 5-2-way run.
#include "bench/bench_common.h"
#include "core/system.h"

using namespace p2pex;
using namespace p2pex::bench;

int main() {
  SimConfig cfg = scaled(base_config());
  cfg.policy = ExchangePolicy::kLongestFirst;  // "5-2-way", as in the paper
  cfg.max_ring_size = 5;
  print_header(
      "Figure 7 — CDF of transfer volume per session, by session type",
      "exchange sessions carry higher volumes than non-exchange sessions "
      "(which are frequently cancelled/preempted); shorter rings carry "
      "more than longer rings (longer rings collapse sooner)",
      cfg);

  auto system = run_system(cfg);
  const MetricsCollector& m = system->metrics();

  TablePrinter t({"volume (MB)", "non-exchange", "pairwise", "3-way",
                  "4-way", "5-way"});
  const std::vector<SessionType> types{SessionType{0}, SessionType{2},
                                       SessionType{3}, SessionType{4},
                                       SessionType{5}};
  for (double mb = 0.0; mb <= 20.0; mb += 2.0) {
    std::vector<std::string> row{num(mb, 0)};
    for (SessionType ty : types) {
      const auto& set = m.volume_by_type(ty);
      row.push_back(set.empty() ? "-" : num(set.cdf_at(mb * 1e6), 3));
    }
    t.add_row(row);
  }
  print_table(t);

  std::printf("sessions per type:");
  for (SessionType ty : types)
    std::printf("  %s=%zu", ty.name().c_str(), m.session_count_by_type(ty));
  std::printf("\nmean volume (MB):");
  for (SessionType ty : types) {
    const auto& set = m.volume_by_type(ty);
    std::printf("  %s=%.2f", ty.name().c_str(),
                set.empty() ? 0.0 : set.mean() / 1e6);
  }
  std::printf("\n");
  return 0;
}
