// Table I / Figure 3: the middleman scenario resolved as a non-ring
// mixed object/capacity exchange. Analytic (no simulation).
#include <cstdio>

#include "bench/bench_common.h"
#include "core/nonring.h"

using namespace p2pex;
using namespace p2pex::bench;

int main() {
  std::printf(
      "================================================================\n"
      "Table I / Figure 3 — non-ring mixed object/capacity exchange\n"
      "paper expectation: A (nothing to trade) receives x at rate 5; B\n"
      "receives y at 10 instead of 5; C matches the pure exchange; D\n"
      "participates instead of idling; all upload budgets respected\n"
      "================================================================\n\n");

  const MixedExchange mixed = paper_table1_scenario();
  const MixedExchange pure = paper_table1_pure_pairwise();

  std::printf("--- Table I scenario ---\n");
  TablePrinter t({"peer", "upload", "has", "wants"});
  t.add_row({"A", "10", "-", "x"});
  t.add_row({"B", "5", "x", "y"});
  t.add_row({"C", "10", "y", "x"});
  t.add_row({"D", "10", "y", "x"});
  print_table(t);

  std::printf("--- pure pairwise exchange (capacity mixing disabled) ---\n%s\n",
              pure.describe().c_str());
  std::printf("--- Figure 3 mixed exchange ---\n%s\n",
              mixed.describe().c_str());

  TablePrinter cmp({"peer", "wants", "pure rate", "mixed rate", "gain"});
  const ObjectId x{0}, y{1};
  const struct {
    const char* name;
    std::size_t idx;
    ObjectId want;
  } rows[] = {{"A", 0, x}, {"B", 1, y}, {"C", 2, x}, {"D", 3, x}};
  for (const auto& row : rows) {
    const double p = pure.receive_rate(row.idx, row.want);
    const double m = mixed.receive_rate(row.idx, row.want);
    cmp.add_row({row.name, row.want == x ? "x" : "y", num(p, 0), num(m, 0),
                 num(m - p, 0)});
  }
  print_table(cmp);

  std::printf("feasible (budgets + relay constraints): pure=%s mixed=%s\n",
              pure.feasible() ? "yes" : "NO", mixed.feasible() ? "yes" : "NO");
  return 0;
}
