// Figure 6: differentiation of mean download times for sharing vs
// non-sharing users as a function of the maximum exchange ring size N
// (N-2-way prefers long rings, 2-N-way prefers short ones; N = 1 means
// no exchanges at all).
#include "bench/bench_common.h"

using namespace p2pex;
using namespace p2pex::bench;

int main() {
  SimConfig base = base_config();
  print_header(
      "Figure 6 — mean download time vs maximum ring size N",
      "a significant gain from N=2 to N=3; little further improvement "
      "beyond N=5",
      base);

  TablePrinter t({"N", "order", "sharing (min)", "non-sharing (min)",
                  "ratio", "exch %"});
  for (std::size_t n = 1; n <= 7; ++n) {
    using Orders = std::vector<std::pair<std::string, ExchangePolicy>>;
    const Orders orders =
        n == 1   ? Orders{{"no exchange", ExchangePolicy::kNoExchange}}
        : n == 2 ? Orders{{"pairwise", ExchangePolicy::kPairwiseOnly}}
                 : Orders{{std::to_string(n) + "-2-way",
                           ExchangePolicy::kLongestFirst},
                          {"2-" + std::to_string(n) + "-way",
                           ExchangePolicy::kShortestFirst}};
    for (const auto& [label, policy] : orders) {
      SimConfig cfg = scaled(base);
      cfg.policy = policy;
      cfg.max_ring_size = std::max<std::size_t>(2, n);
      const RunResult r = run_experiment(cfg, label);
      t.add_row({std::to_string(n), label, num(r.mean_dl_minutes_sharing),
                 num(r.mean_dl_minutes_nonsharing), num(r.dl_time_ratio, 2),
                 num(100.0 * r.exchange_fraction)});
    }
  }
  print_table(t);
  return 0;
}
